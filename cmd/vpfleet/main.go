// Command vpfleet spawns and supervises N local vpserved shards — the
// one-command way to stand up a fleet for CI, benchmarks and examples
// (DESIGN.md §12). Each shard is this same binary re-executed in a serving
// mode (no separate vpserved binary needed), listening on a random
// loopback port with a stable shard id; the supervisor waits until every
// shard answers /v1/healthz, publishes the roster, and then forwards
// SIGTERM/SIGINT to the children so the whole fleet drains as one unit.
//
// Usage:
//
//	vpfleet -n 3 -addr-file fleet.addrs -pids-file fleet.pids &
//	vpsim -kernel art -pred vtage -shards "$(cat fleet.addrs)"
//	experiments -run fig4 -shards "$(cat fleet.addrs)"
//	kill -TERM "$(sed -n 2p fleet.pids)"    # kill one shard; the fleet routes around it
//
// The addr file holds every shard base URL comma-separated — exactly the
// -shards argument. The pids file holds one child pid per line, in shard
// order, so a test can SIGTERM a specific shard mid-run. A shard that dies
// is logged and left down (the fleet front re-routes); vpfleet does not
// restart children, keeping CI runs deterministic.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro"
)

// child is one supervised shard process.
type child struct {
	cmd      *exec.Cmd
	addrPath string
	url      string
}

func main() {
	if len(os.Args) > 1 && os.Args[1] == "serve-shard" {
		os.Exit(serveShard(os.Args[2:]))
	}
	os.Exit(supervise(os.Args[1:]))
}

// supervise is the default mode: spawn N shards, publish the roster, relay
// signals, reap children.
func supervise(args []string) int {
	fs := flag.NewFlagSet("vpfleet", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	n := fs.Int("n", 3, "number of shards to spawn")
	addrFile := fs.String("addr-file", "", "write every shard base URL, comma-separated, to this file once all are healthy (the -shards argument)")
	pidsFile := fs.String("pids-file", "", "write one child pid per line, in shard order")
	storeDir := fs.String("store-dir", "", "persistent record store directory shared by every shard (empty: memory-only per shard)")
	warmup := fs.Uint64("warmup", 0, "warmup µops per simulation, per shard (0: server default)")
	measure := fs.Uint64("measure", 0, "measured µops per simulation, per shard (0: server default)")
	workers := fs.Int("workers", 0, "simulation workers per shard (0: GOMAXPROCS)")
	startTimeout := fs.Duration("start-timeout", 30*time.Second, "budget for every shard to become healthy")
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	if *n < 1 {
		logger.Error("need at least one shard", "n", *n)
		return 2
	}
	self, err := os.Executable()
	if err != nil {
		logger.Error("resolve own executable", "err", err)
		return 1
	}
	tmp, err := os.MkdirTemp("", "vpfleet-*")
	if err != nil {
		logger.Error("temp dir", "err", err)
		return 1
	}
	defer os.RemoveAll(tmp)

	children := make([]*child, *n)
	exits := make(chan int, *n) // shard index, on child exit
	for i := range children {
		ch := &child{addrPath: filepath.Join(tmp, fmt.Sprintf("shard%d.addr", i))}
		cargs := []string{
			"serve-shard",
			"-addr", "127.0.0.1:0",
			"-addr-file", ch.addrPath,
			"-shard-id", fmt.Sprintf("shard-%d", i),
		}
		if *storeDir != "" {
			cargs = append(cargs, "-store-dir", *storeDir)
		}
		if *warmup != 0 {
			cargs = append(cargs, "-warmup", strconv.FormatUint(*warmup, 10))
		}
		if *measure != 0 {
			cargs = append(cargs, "-measure", strconv.FormatUint(*measure, 10))
		}
		if *workers != 0 {
			cargs = append(cargs, "-workers", strconv.Itoa(*workers))
		}
		ch.cmd = exec.Command(self, cargs...)
		ch.cmd.Stderr = os.Stderr
		ch.cmd.Stdout = os.Stdout
		if err := ch.cmd.Start(); err != nil {
			logger.Error("spawn shard", "shard", i, "err", err)
			killAll(children)
			return 1
		}
		children[i] = ch
		go func(i int, c *exec.Cmd) {
			c.Wait()
			exits <- i
		}(i, ch.cmd)
	}

	// Wait until every shard published its address and answers healthz.
	deadline := time.Now().Add(*startTimeout)
	for i, ch := range children {
		for {
			if time.Now().After(deadline) {
				logger.Error("shard never became healthy", "shard", i)
				killAll(children)
				return 1
			}
			if b, err := os.ReadFile(ch.addrPath); err == nil && len(b) > 0 {
				url := "http://" + strings.TrimSpace(string(b))
				resp, err := http.Get(url + "/v1/healthz")
				if err == nil {
					resp.Body.Close()
					if resp.StatusCode == http.StatusOK {
						ch.url = url
						break
					}
				}
			}
			time.Sleep(50 * time.Millisecond)
		}
		logger.Info("shard healthy", "shard", i, "url", ch.url, "pid", ch.cmd.Process.Pid)
	}

	urls := make([]string, len(children))
	pids := make([]string, len(children))
	for i, ch := range children {
		urls[i] = ch.url
		pids[i] = strconv.Itoa(ch.cmd.Process.Pid)
	}
	roster := strings.Join(urls, ",")
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(roster), 0o644); err != nil {
			logger.Error("write addr-file", "err", err)
			killAll(children)
			return 1
		}
	}
	if *pidsFile != "" {
		if err := os.WriteFile(*pidsFile, []byte(strings.Join(pids, "\n")+"\n"), 0o644); err != nil {
			logger.Error("write pids-file", "err", err)
			killAll(children)
			return 1
		}
	}
	fmt.Println(roster)
	logger.Info("fleet up", "shards", len(children))

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	alive := len(children)
	for {
		select {
		case s := <-sig:
			logger.Info("forwarding signal to shards", "signal", s.String())
			for _, ch := range children {
				if ch.cmd.Process != nil {
					ch.cmd.Process.Signal(syscall.SIGTERM)
				}
			}
			// Children drain and exit; reap them all, then leave.
			for alive > 0 {
				<-exits
				alive--
			}
			logger.Info("fleet drained")
			return 0
		case i := <-exits:
			// A shard died on its own (killed by a test, crashed). Leave it
			// down — the fleet front marks it and routes around — but keep
			// supervising the rest.
			alive--
			logger.Warn("shard exited", "shard", i, "alive", alive)
			if alive == 0 {
				logger.Error("all shards gone")
				return 1
			}
		}
	}
}

func killAll(children []*child) {
	for _, ch := range children {
		if ch != nil && ch.cmd != nil && ch.cmd.Process != nil {
			ch.cmd.Process.Kill()
		}
	}
}

// serveShard is the child mode: one vpserved-equivalent daemon, drained by
// SIGTERM exactly like the real thing.
func serveShard(args []string) int {
	fs := flag.NewFlagSet("vpfleet serve-shard", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	addr := fs.String("addr", "127.0.0.1:0", "listen address")
	addrFile := fs.String("addr-file", "", "write the bound address here once listening")
	shardID := fs.String("shard-id", "", "shard identity (empty: bound host:port)")
	storeDir := fs.String("store-dir", "", "persistent record store directory")
	warmup := fs.Uint64("warmup", 0, "warmup µops per simulation (0: server default)")
	measure := fs.Uint64("measure", 0, "measured µops per simulation (0: server default)")
	workers := fs.Int("workers", 0, "simulation workers (0: GOMAXPROCS)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, nil)).With("shard", *shardID)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Error("listen", "err", err)
		return 1
	}
	bound := ln.Addr().String()
	id := *shardID
	if id == "" {
		id = bound
	}
	svc, err := repro.NewServer(repro.ServerOptions{
		Warmup:   *warmup,
		Measure:  *measure,
		Workers:  *workers,
		StoreDir: *storeDir,
		ShardID:  id,
	})
	if err != nil {
		logger.Error("start", "err", err)
		return 1
	}
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound), 0o644); err != nil {
			logger.Error("write addr-file", "err", err)
			return 1
		}
	}
	logger.Info("shard listening", "addr", bound)

	httpSrv := &http.Server{Handler: svc, ReadHeaderTimeout: 10 * time.Second}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	select {
	case s := <-sig:
		logger.Info("draining", "signal", s.String())
	case err := <-serveErr:
		logger.Error("serve", "err", err)
		return 1
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	if err := svc.Drain(ctx); err != nil {
		logger.Warn("drain interrupted", "err", err)
	}
	httpSrv.Shutdown(ctx)
	svc.Close()
	logger.Info("shard drained")
	return 0
}
