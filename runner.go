package repro

import (
	"context"
	"io"
	"runtime"
	"time"

	"repro/internal/harness"
	"repro/internal/obs"
	"repro/internal/service"
)

// Spec identifies one simulation: kernel, predictor, counter scheme,
// recovery mode, and the optional extended machine/predictor key (Width,
// LoadsOnly, MaxHist, FPCVec). It is the harness's canonical memo key made
// public, so the facade, the wire layer and the harness share one spec
// vocabulary: Canonical() folds equivalent spellings onto one identity,
// Validate() checks the constructible configuration space, and Baseline()
// names the no-VP machine a speedup divides by. Zero values mean the paper's
// Table 2 defaults.
type Spec = harness.Spec

// Record is the flattened, machine-readable result of one simulation —
// stable JSON/CSV field names, speedup included. Every Runner method that
// produces results produces Records.
type Record = harness.Record

// ExperimentInfo is one row of the experiment index: id plus the paper
// artifact it regenerates.
type ExperimentInfo = service.ExperimentInfo

// Runner is the backend-neutral way to run simulations: the same interface
// drives an in-process session (LocalRunner) or a vpserved daemon
// (RemoteRunner), so CLIs, examples and tests retarget with one flag.
// Implementations reuse one warm session per Runner — repeated and
// overlapping work hits the memo instead of re-paying predictor and cache
// warmup.
type Runner interface {
	// Simulate runs one spec (plus the baseline its speedup needs) and
	// returns its record.
	Simulate(ctx context.Context, spec Spec) (Record, error)

	// Batch runs every spec and invokes fn exactly once per spec, in spec
	// order, as records become deliverable — fn sees the prefix stream while
	// later specs are still simulating. fn is never called concurrently. A
	// spec failure or a non-nil fn error aborts the batch.
	Batch(ctx context.Context, specs []Spec, fn func(Record) error) error

	// Experiment regenerates one experiment by id into w. Format (text,
	// json, csv) and worker count come from o; o.Warmup/o.Measure are
	// per-call window overrides (zero: the runner's windows).
	Experiment(ctx context.Context, id string, o ExperimentOptions, w io.Writer) error

	// Experiments returns the experiment index the backend serves.
	Experiments(ctx context.Context) ([]ExperimentInfo, error)

	// RegisterProgram promotes p to a first-class workload of this backend
	// and returns the workload string to put in Spec.Program: normally the
	// content-addressed "prog:<sha256>" reference, or the builtin kernel's
	// name when p is byte-identical to one. A LocalRunner registers it on
	// the warm session; a RemoteRunner uploads it (POST /v1/programs) and
	// re-uploads transparently if the daemon restarts, so program specs
	// behave identically across backends.
	RegisterProgram(ctx context.Context, p *Program) (string, error)

	// Close releases the runner's resources. The error is always nil today;
	// the signature leaves room for backends with real shutdown work.
	Close() error
}

// Interface compliance is part of the facade contract.
var (
	_ Runner = (*LocalRunner)(nil)
	_ Runner = (*RemoteRunner)(nil)
)

// MemoStats snapshots a session's caching effectiveness: in-process memo
// hits, persistent-store hits, and misses (simulations actually started),
// plus the attached store's own counters.
type MemoStats = harness.MemoStats

// Metrics is the observability registry (internal/obs) made public: atomic
// counters, gauges, and latency histograms grouped into labeled families,
// rendered in Prometheus text format by WritePrometheus or served by
// Handler. One registry can back any number of runners, servers, and
// process-level instruments; DESIGN.md §10 catalogs the families the stack
// registers.
type Metrics = obs.Registry

// NewMetrics builds an empty metrics registry.
func NewMetrics() *Metrics { return obs.NewRegistry() }

// RunnerOptions sizes a LocalRunner: per-simulation windows and the worker
// pool. The zero value is the paper's interactive default (50k warmup /
// 250k measured µops, GOMAXPROCS workers, no persistent store, no
// observability). OpenRemoteRunner honours Metrics and TraceWriter too —
// the other fields describe the local session a remote daemon owns itself.
type RunnerOptions struct {
	Warmup  uint64 // µops before measurement per simulation (default 50_000)
	Measure uint64 // measured µops per simulation (default 250_000)
	Workers int    // parallel simulation workers (<=0: GOMAXPROCS)

	// Shards is the vpserved base URLs a sharded runner routes across
	// (OpenShardedRunner). Ignored by the local and remote constructors:
	// like StoreDir for LocalRunner, it configures only the backend that
	// reads it.
	Shards []string

	// StoreDir, when non-empty, attaches a persistent content-addressed
	// record store under the session memo: simulation results are loaded
	// from (and persisted to) the directory, so a fresh process over a
	// populated store pays disk reads instead of simulations. Any number of
	// processes may share one directory.
	StoreDir string

	// Metrics, when non-nil, registers the runner's instruments on the
	// given registry: cache lookups, executed simulations, per-phase wall
	// time, and repro_dispatch_seconds{backend} — the same families a
	// vpserved /metrics page exposes, so local and remote runs read alike.
	Metrics *Metrics

	// TraceWriter, when non-nil, receives one NDJSON span (obs.Span wire
	// schema, DESIGN.md §10) per simulation lifecycle stage and per runner
	// dispatch. The tracer serializes writes; an *os.File is fine.
	TraceWriter io.Writer
}

// withDefaults resolves unset windows to the facade defaults. Workers stays
// as-is: <=0 means GOMAXPROCS at the point of use, so a runner tracks
// runtime changes.
func (o RunnerOptions) withDefaults() RunnerOptions {
	if o.Warmup == 0 {
		o.Warmup = 50_000
	}
	if o.Measure == 0 {
		o.Measure = 250_000
	}
	return o
}

func (o RunnerOptions) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// runnerObs is the dispatch-level instrumentation both backends share: the
// repro_dispatch_seconds{backend} histogram and a dispatch span per Simulate
// call. Comparing the two backend labels on one registry puts a number on
// the wire tax a remote runner pays over a warm local call. A nil *runnerObs
// is a no-op, so unobserved runners carry no overhead.
type runnerObs struct {
	dispatch *obs.Histogram
	tracer   *obs.Tracer
	tier     string
}

// newRunnerObs builds the dispatch instruments for one backend. The tracer
// is shared with the session observer (one writer, one mutex) rather than
// rebuilt from the writer, so concurrent span emissions cannot interleave.
func newRunnerObs(reg *Metrics, tracer *obs.Tracer, backend string) *runnerObs {
	if reg == nil && tracer == nil {
		return nil
	}
	ro := &runnerObs{tracer: tracer, tier: backend}
	if reg != nil {
		ro.dispatch = reg.HistogramVec("repro_dispatch_seconds",
			"Runner wall time per Simulate dispatch by backend: in-process scheduling (local) vs full HTTP round-trip (remote).",
			nil, "backend").With(backend)
	}
	return ro
}

// observe records one dispatch: called with the call's start time and
// outcome as the Simulate returns.
func (ro *runnerObs) observe(spec Spec, start time.Time, err error) {
	if ro == nil {
		return
	}
	d := time.Since(start)
	if ro.dispatch != nil {
		ro.dispatch.Observe(d.Seconds())
	}
	if ro.tracer != nil {
		s := obs.Span{
			Run:   ro.tracer.Begin(),
			Spec:  spec.Identity(),
			Stage: obs.StageDispatch,
			Tier:  ro.tier,
			DurNS: d.Nanoseconds(),
		}
		if err != nil {
			s.Err = err.Error()
		}
		ro.tracer.Emit(s)
	}
}
