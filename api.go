// Package repro is a from-scratch Go reproduction of Perais & Seznec,
// "Practical Data Value Speculation for Future High-end Processors"
// (HPCA 2014): the VTAGE value predictor and Forward Probabilistic Counter
// (FPC) confidence scheme, the baseline predictors they are evaluated
// against (LVP, 2-delta Stride, order-4 FCM, hybrids), and the full
// evaluation substrate — a cycle-level 8-wide out-of-order pipeline with
// TAGE branch prediction, store sets, a three-level cache hierarchy over a
// DDR3 model, and 19 synthetic SPEC-like kernels.
//
// This root package is the stable facade: it names kernels, predictors and
// recovery modes, runs simulations, and exposes the paper's experiments.
// The building blocks live in internal/ packages (see DESIGN.md for the
// system inventory and per-experiment index).
package repro

import (
	"context"
	"fmt"
	"io"

	"repro/internal/harness"
	"repro/internal/kernels"
	"repro/internal/pipeline"
	"repro/internal/service"
	"repro/internal/service/client"
)

// Recovery selects the value-misprediction recovery mechanism.
type Recovery = pipeline.RecoveryMode

// Recovery mechanisms (Section 3.1.1 of the paper).
const (
	SquashAtCommit   = pipeline.SquashAtCommit
	SelectiveReissue = pipeline.SelectiveReissue
)

// Counters selects the confidence-counter scheme.
type Counters = harness.Counters

// Counter schemes (Section 5 of the paper).
const (
	BaselineCounters = harness.BaselineCounters
	FPC              = harness.FPC
)

// Options configures one simulation. The extended fields (Width, LoadsOnly,
// MaxHist, FPCVector) are the canonical config key of harness.Spec: zero
// values select the paper's Table 2 machine, so existing callers are
// unchanged.
type Options struct {
	Kernel    string   // one of Kernels()
	Predictor string   // one of Predictors()
	Counters  Counters // BaselineCounters or FPC
	Recovery  Recovery // SquashAtCommit or SelectiveReissue
	Warmup    uint64   // µops before measurement (default 50_000)
	Measure   uint64   // measured µops (default 250_000)
	Workers   int      // parallel simulation workers (<=0: GOMAXPROCS)

	Width     int    // machine width override (0: the paper's 8-wide)
	LoadsOnly bool   // restrict value prediction to load µops
	MaxHist   int    // VTAGE max history override (0: the paper's 64)
	FPCVector string // explicit FPC vector, e.g. "0,2,2,2,2,3,3" ("": derive from Counters)
}

// Summary reports the headline results of one simulation.
type Summary struct {
	Kernel    string         `json:"kernel"`
	Predictor string         `json:"predictor"`
	IPC       float64        `json:"ipc"`
	Speedup   float64        `json:"speedup"` // vs the same machine without value prediction
	Coverage  float64        `json:"coverage"`
	Accuracy  float64        `json:"accuracy"`
	Stats     pipeline.Stats `json:"stats"` // full counters
}

// Kernels lists the 19 synthetic benchmark names (Table 3 order).
func Kernels() []string { return kernels.Names() }

// Predictors lists the predictor configuration names: "none", "lvp",
// "stride", "fcm", "vtage", "oracle", "fcm+stride", "vtage+stride".
func Predictors() []string { return harness.PredictorNames }

// Simulate runs one kernel × predictor configuration and returns its
// summary. The baseline (no-VP) run used for the speedup is included in the
// cost.
func Simulate(o Options) (Summary, error) {
	if o.Warmup == 0 {
		o.Warmup = 50_000
	}
	if o.Measure == 0 {
		o.Measure = 250_000
	}
	se := harness.NewSession(o.Warmup, o.Measure)
	spec := harness.Spec{
		Kernel:    o.Kernel,
		Predictor: o.Predictor,
		Counters:  o.Counters,
		Recovery:  o.Recovery,
		Width:     o.Width,
		LoadsOnly: o.LoadsOnly,
		MaxHist:   o.MaxHist,
		FPCVec:    o.FPCVector,
	}.Canonical()
	// Batch the run and its baseline so they execute in parallel when the
	// caller grants more than one worker.
	results, err := se.RunAll([]harness.Spec{spec, spec.Baseline()}, o.Workers)
	if err != nil {
		return Summary{}, err
	}
	r := results[0]
	sp, err := se.Speedup(spec)
	if err != nil {
		return Summary{}, err
	}
	return Summary{
		Kernel:    o.Kernel,
		Predictor: o.Predictor,
		IPC:       r.Stats.IPC(),
		Speedup:   sp,
		Coverage:  r.Stats.Coverage(),
		Accuracy:  r.Stats.Accuracy(),
		Stats:     r.Stats,
	}, nil
}

// Experiments lists the reproducible tables and figures by id.
func Experiments() []string {
	var ids []string
	for _, e := range harness.Experiments() {
		ids = append(ids, e.ID)
	}
	return ids
}

// ExperimentOptions sizes, parallelizes, and formats one experiment run.
type ExperimentOptions struct {
	Warmup  uint64 // µops before measurement per simulation
	Measure uint64 // measured µops per simulation
	Workers int    // parallel simulation workers (<=0: GOMAXPROCS)
	Format  string // "text" (default), "json", or "csv"
}

// RunExperiment regenerates one of the paper's tables or figures into w.
// Warmup/measure size each underlying simulation.
func RunExperiment(id string, warmup, measure uint64, w io.Writer) error {
	return RunExperimentOpts(id, ExperimentOptions{Warmup: warmup, Measure: measure}, w)
}

// RunExperimentOpts regenerates one experiment into w, fanning its
// simulations out across o.Workers goroutines and emitting o.Format.
func RunExperimentOpts(id string, o ExperimentOptions, w io.Writer) error {
	return RunExperimentContext(context.Background(), id, o, w)
}

// RunExperimentContext is RunExperimentOpts with cancellation: when ctx is
// done, unstarted simulations are abandoned, in-flight ones stop at their
// next cancellation checkpoint, and the context error is returned.
func RunExperimentContext(ctx context.Context, id string, o ExperimentOptions, w io.Writer) error {
	e, ok := harness.ExperimentByID(id)
	if !ok {
		return fmt.Errorf("repro: unknown experiment %q (have %v)", id, Experiments())
	}
	return harness.Render(ctx, harness.NewSession(o.Warmup, o.Measure), e, o.Format, o.Workers, w)
}

// Service layer (DESIGN.md §6): the simulation-as-a-service subsystem. A
// Server is one process-lifetime session behind the /v1 HTTP job API —
// synchronous simulation, batch and experiment jobs, NDJSON/SSE result
// streaming, cancellation, and /healthz + /statsz observability. cmd/vpserved
// is the standalone daemon; Client is the typed way to talk to either.

// Server is the simulation service as an http.Handler.
type Server = service.Server

// ServerOptions configures a Server; the zero value uses serving defaults
// (50k/250k windows, GOMAXPROCS workers, 64 jobs, 4096 specs/batch, 2m
// synchronous budget).
type ServerOptions = service.Options

// SpecRequest is the wire form of one simulation spec.
type SpecRequest = service.SpecRequest

// JobStatus is the wire form of one service job.
type JobStatus = service.JobStatus

// ServiceEvent is one entry of a job's result stream.
type ServiceEvent = service.Event

// ServerStats is the /v1/statsz body.
type ServerStats = service.ServerStats

// NewServer builds the simulation service and starts its worker pool. Serve
// it with net/http; stop it with Drain (graceful) or Close.
func NewServer(o ServerOptions) (*Server, error) { return service.New(o) }

// Client is the typed client for a running Server / vpserved daemon.
type Client = client.Client

// NewClient builds a client for the service at baseURL
// (e.g. "http://127.0.0.1:8437").
func NewClient(baseURL string) *Client { return client.New(baseURL) }
