// Package repro is a from-scratch Go reproduction of Perais & Seznec,
// "Practical Data Value Speculation for Future High-end Processors"
// (HPCA 2014): the VTAGE value predictor and Forward Probabilistic Counter
// (FPC) confidence scheme, the baseline predictors they are evaluated
// against (LVP, 2-delta Stride, order-4 FCM, hybrids), and the full
// evaluation substrate — a cycle-level 8-wide out-of-order pipeline with
// TAGE branch prediction, store sets, a three-level cache hierarchy over a
// DDR3 model, and 19 synthetic SPEC-like kernels.
//
// This root package is the stable facade. Its center is the backend-neutral
// Runner API (runner.go): one Spec vocabulary and one interface —
// Simulate/Batch/Experiment — served either in-process over a long-lived
// warm session (LocalRunner) or by a vpserved daemon (RemoteRunner). The
// building blocks live in internal/ packages (see DESIGN.md for the system
// inventory, §7 for the facade design and the deprecation table).
package repro

import (
	"context"
	"io"
	"sync"

	"repro/internal/harness"
	"repro/internal/isa"
	"repro/internal/kernels"
	"repro/internal/pipeline"
	"repro/internal/service"
	"repro/internal/service/client"
)

// Recovery selects the value-misprediction recovery mechanism.
type Recovery = pipeline.RecoveryMode

// Recovery mechanisms (Section 3.1.1 of the paper).
const (
	SquashAtCommit   = pipeline.SquashAtCommit
	SelectiveReissue = pipeline.SelectiveReissue
)

// Counters selects the confidence-counter scheme.
type Counters = harness.Counters

// Counter schemes (Section 5 of the paper).
const (
	BaselineCounters = harness.BaselineCounters
	FPC              = harness.FPC
)

// Kernels lists the 19 synthetic benchmark names (Table 3 order).
func Kernels() []string { return kernels.Names() }

// Predictors lists the predictor configuration names: "none", "lvp",
// "stride", "fcm", "vtage", "oracle", "fcm+stride", "vtage+stride", "ps",
// "gdiff".
func Predictors() []string { return harness.PredictorNames }

// Experiments lists the reproducible tables and figures by id. For the
// backend's own index (a remote server may serve a different build), use
// Runner.Experiments.
func Experiments() []string {
	var ids []string
	for _, e := range harness.Experiments() {
		ids = append(ids, e.ID)
	}
	return ids
}

// ExperimentOptions sizes, parallelizes, and formats one experiment run.
// With a Runner, Warmup/Measure are per-call window overrides: zero keeps
// the runner's windows; a LocalRunner honours an override on a throwaway
// session, a RemoteRunner refuses a mismatch with the server's windows.
type ExperimentOptions struct {
	Warmup  uint64 // µops before measurement per simulation (0: runner default)
	Measure uint64 // measured µops per simulation (0: runner default)
	Workers int    // parallel simulation workers (<=0: runner default; remote: server pool)
	Format  string // "text" (default), "json", or "csv"
}

// APIError is a typed service-layer failure: HTTP status, a stable
// machine-readable code (APICode* constants), and the server's message.
// Client and RemoteRunner calls return it unwrapped — assert with
// errors.As(err, *APIError).
type APIError = service.APIError

// Stable APIError codes.
const (
	APICodeBadRequest     = service.CodeBadRequest
	APICodeNotFound       = service.CodeNotFound
	APICodeTooLarge       = service.CodeTooLarge
	APICodeQueueFull      = service.CodeQueueFull
	APICodeDraining       = service.CodeDraining
	APICodeTimeout        = service.CodeTimeout
	APICodeInternal       = service.CodeInternal
	APICodeUnknownProgram = service.CodeUnknownProgram
)

// ---------------------------------------------------------------------------
// Workload programs (DESIGN.md §11): bring-your-own workloads as data. A
// Program — hand-assembled, loaded from a file, or generated — becomes a
// simulation input by registering it with a Runner, which answers the
// content-addressed workload string to put in Spec.Program. Identity is the
// program's bytes, never its name: byte-identical programs share memo
// entries, persisted store records and warm-state snapshots across backends
// and daemon restarts, and two different programs can never collide.
// ---------------------------------------------------------------------------

// Program is a workload program: code, data segments, initial registers and
// an entry point for the simulated ISA (internal/isa made public).
type Program = isa.Program

// ProgramInfo describes one program registered with a daemon (the POST/GET
// /v1/programs wire form): its canonical workload id plus display metadata.
type ProgramInfo = service.ProgramInfo

// AssembleProgram parses text-assembly source (the .vasm grammar of
// DESIGN.md §11) into a program. name is used when the source has no .name
// directive.
func AssembleProgram(name string, src []byte) (*Program, error) { return isa.Assemble(name, src) }

// DisassembleProgram renders p as canonical text assembly; assembling the
// output reproduces p byte for byte.
func DisassembleProgram(p *Program) []byte { return isa.Disassemble(p) }

// LoadProgram sniffs data's format — binary program encoding or text
// assembly — and decodes accordingly; name applies to assembly with no
// .name directive. This is what the CLIs' -program flags call.
func LoadProgram(name string, data []byte) (*Program, error) { return isa.Load(name, data) }

// GenerateProgram builds a deterministic synthetic workload: the same
// family and seed produce byte-identical programs on every machine, so
// generated corpora are shareable by (family, seed) alone. Families are
// listed by GeneratorFamilies.
func GenerateProgram(family string, seed uint64) (*Program, error) { return isa.Generate(family, seed) }

// GeneratorFamilies lists the synthetic workload families GenerateProgram
// accepts.
func GeneratorFamilies() []string { return isa.Families() }

// ProgramID returns p's content-addressed workload reference
// ("prog:<sha256>" over the binary encoding) without registering it
// anywhere — useful for naming expectations in tests and manifests.
func ProgramID(p *Program) string { return harness.ProgramID(p) }

// ---------------------------------------------------------------------------
// Deprecated one-shot entry points.
//
// These predate the Runner API and are kept as thin wrappers so existing
// callers keep compiling — and get faster: they are backed by shared
// process-default LocalRunners (one per distinct window sizing), so repeated
// calls hit the warm memo instead of re-paying predictor/cache warmup in a
// cold throwaway session, which is what each call used to cost.
// ---------------------------------------------------------------------------

// Options configures one Simulate call: a Spec's fields plus sizing knobs.
//
// Deprecated: build a Spec and use Runner.Simulate; sizing lives in
// RunnerOptions.
type Options struct {
	Kernel    string   // one of Kernels()
	Predictor string   // one of Predictors()
	Counters  Counters // BaselineCounters or FPC
	Recovery  Recovery // SquashAtCommit or SelectiveReissue
	Warmup    uint64   // µops before measurement (default 50_000)
	Measure   uint64   // measured µops (default 250_000)
	Workers   int      // parallel simulation workers (<=0: GOMAXPROCS)
	StoreDir  string   // persistent record store directory ("": memory-only)

	Width     int    // machine width override (0: the paper's 8-wide)
	LoadsOnly bool   // restrict value prediction to load µops
	MaxHist   int    // VTAGE max history override (0: the paper's 64)
	FPCVector string // explicit FPC vector, e.g. "0,2,2,2,2,3,3" ("": derive from Counters)
}

// spec extracts the simulation identity from the options.
func (o Options) spec() Spec {
	return Spec{
		Kernel:    o.Kernel,
		Predictor: o.Predictor,
		Counters:  o.Counters,
		Recovery:  o.Recovery,
		Width:     o.Width,
		LoadsOnly: o.LoadsOnly,
		MaxHist:   o.MaxHist,
		FPCVec:    o.FPCVector,
	}
}

// Summary reports the headline results of one simulation.
type Summary struct {
	Kernel    string         `json:"kernel"`
	Predictor string         `json:"predictor"`
	IPC       float64        `json:"ipc"`
	Speedup   float64        `json:"speedup"` // vs the same machine without value prediction
	Coverage  float64        `json:"coverage"`
	Accuracy  float64        `json:"accuracy"`
	Stats     pipeline.Stats `json:"stats"` // full counters
}

// defaultRunners holds the process-default LocalRunners backing the
// deprecated wrappers, one per distinct (warmup, measure, store directory)
// sizing, so legacy call sites share warm sessions. Each entry's memory is
// its session's memoized traces/results, so the pool is bounded: beyond
// maxDefaultRunners distinct sizings the oldest runner is dropped (its
// next use simply pays a cold session again — the pre-Runner behaviour on
// every call).
const maxDefaultRunners = 8

// runnerKey identifies one process-default runner: its windows plus the
// store directory it persists to ("" when memory-only). Windows are part of
// the simulation identity, and mixing store-backed and memory-only callers
// on one session would silently persist (or fail to persist) the other's
// results.
type runnerKey struct {
	warmup, measure uint64
	storeDir        string
}

var (
	defaultMu      sync.Mutex
	defaultRunners = map[runnerKey]*LocalRunner{}
	defaultOrder   []runnerKey // insertion order, for eviction
)

// defaultLocalRunner returns the shared runner for the given windows and
// store directory (zeroes/empty mean the facade defaults), creating it on
// first use. The error is always nil when storeDir is empty.
func defaultLocalRunner(warmup, measure uint64, storeDir string) (*LocalRunner, error) {
	o := RunnerOptions{Warmup: warmup, Measure: measure, StoreDir: storeDir}.withDefaults()
	key := runnerKey{o.Warmup, o.Measure, o.StoreDir}
	defaultMu.Lock()
	defer defaultMu.Unlock()
	if r, ok := defaultRunners[key]; ok {
		return r, nil
	}
	r, err := OpenLocalRunner(o)
	if err != nil {
		return nil, err
	}
	if len(defaultOrder) >= maxDefaultRunners {
		delete(defaultRunners, defaultOrder[0])
		defaultOrder = defaultOrder[1:]
	}
	defaultRunners[key] = r
	defaultOrder = append(defaultOrder, key)
	return r, nil
}

// DefaultRunner returns the process-default LocalRunner with the facade's
// default windows — the quickest way to a warm, shareable backend.
func DefaultRunner() *LocalRunner {
	r, _ := defaultLocalRunner(0, 0, "") // no store: cannot fail
	return r
}

// Simulate runs one kernel × predictor configuration and returns its
// summary. The baseline (no-VP) run used for the speedup is included in the
// cost. Runs execute on a shared process-default session: a repeated call
// is a memo hit, not a fresh simulation.
//
// Deprecated: use Runner.Simulate, which returns the structured Record and
// works against remote backends too. Simulate remains for callers that need
// the full pipeline.Stats counters.
func Simulate(o Options) (Summary, error) {
	r, err := defaultLocalRunner(o.Warmup, o.Measure, o.StoreDir)
	if err != nil {
		return Summary{}, err
	}
	spec := o.spec().Canonical()
	if err := spec.Validate(); err != nil {
		return Summary{}, err
	}
	// Batch the run and its baseline so they execute in parallel when the
	// caller grants more than one worker.
	se := r.Session()
	results, err := se.RunAll([]harness.Spec{spec, spec.Baseline()}, o.Workers)
	if err != nil {
		return Summary{}, err
	}
	res := results[0]
	sp, err := se.Speedup(spec)
	if err != nil {
		return Summary{}, err
	}
	return Summary{
		Kernel:    o.Kernel,
		Predictor: o.Predictor,
		IPC:       res.Stats.IPC(),
		Speedup:   sp,
		Coverage:  res.Stats.Coverage(),
		Accuracy:  res.Stats.Accuracy(),
		Stats:     res.Stats,
	}, nil
}

// RunExperiment regenerates one of the paper's tables or figures into w.
// Warmup/measure size each underlying simulation.
//
// Deprecated: use Runner.Experiment.
func RunExperiment(id string, warmup, measure uint64, w io.Writer) error {
	return RunExperimentOpts(id, ExperimentOptions{Warmup: warmup, Measure: measure}, w)
}

// RunExperimentOpts regenerates one experiment into w, fanning its
// simulations out across o.Workers goroutines and emitting o.Format.
//
// Deprecated: use Runner.Experiment.
func RunExperimentOpts(id string, o ExperimentOptions, w io.Writer) error {
	return RunExperimentContext(context.Background(), id, o, w)
}

// RunExperimentContext is RunExperimentOpts with cancellation: when ctx is
// done, unstarted simulations are abandoned, in-flight ones stop at their
// next cancellation checkpoint, and the context error is returned. Like
// Simulate, it runs on the shared process-default runner for its windows.
//
// Deprecated: use Runner.Experiment.
func RunExperimentContext(ctx context.Context, id string, o ExperimentOptions, w io.Writer) error {
	r, _ := defaultLocalRunner(o.Warmup, o.Measure, "") // no store: cannot fail
	// The runner already carries the windows; pass only the per-call knobs.
	return r.Experiment(ctx, id, ExperimentOptions{Workers: o.Workers, Format: o.Format}, w)
}

// ---------------------------------------------------------------------------
// Service layer (DESIGN.md §6): the simulation-as-a-service subsystem. A
// Server is one process-lifetime session behind the /v1 HTTP job API —
// synchronous simulation, batch and experiment jobs, NDJSON/SSE result
// streaming, cancellation, and /healthz + /statsz observability. cmd/vpserved
// is the standalone daemon; Client is the typed way to talk to either, and
// RemoteRunner (runner_remote.go) the backend-neutral one.
// ---------------------------------------------------------------------------

// Server is the simulation service as an http.Handler.
type Server = service.Server

// ServerOptions configures a Server; the zero value uses serving defaults
// (50k/250k windows, GOMAXPROCS workers, 64 jobs, 4096 specs/batch, 2m
// synchronous budget).
type ServerOptions = service.Options

// SpecRequest is the wire form of one simulation spec.
type SpecRequest = service.SpecRequest

// JobStatus is the wire form of one service job.
type JobStatus = service.JobStatus

// ServiceEvent is one entry of a job's result stream.
type ServiceEvent = service.Event

// ServerStats is the /v1/statsz body.
type ServerStats = service.ServerStats

// NewServer builds the simulation service and starts its worker pool. Serve
// it with net/http; stop it with Drain (graceful) or Close.
func NewServer(o ServerOptions) (*Server, error) { return service.New(o) }

// Client is the typed client for a running Server / vpserved daemon.
type Client = client.Client

// NewClient builds a client for the service at baseURL
// (e.g. "http://127.0.0.1:8437").
func NewClient(baseURL string) *Client { return client.New(baseURL) }
